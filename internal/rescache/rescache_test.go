package rescache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func bg() context.Context { return context.Background() }

func TestHitMissAndCounters(t *testing.T) {
	fills := 0
	c := New[int](8, 2, nil)
	fill := func() (int, error) { fills++; return 42, nil }

	v, cached, err := c.Do(bg(), "k", fill)
	if err != nil || cached || v != 42 {
		t.Fatalf("first Do = (%d, %v, %v), want (42, false, nil)", v, cached, err)
	}
	v, cached, err = c.Do(bg(), "k", fill)
	if err != nil || !cached || v != 42 {
		t.Fatalf("second Do = (%d, %v, %v), want (42, true, nil)", v, cached, err)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times, want 1", fills)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", got)
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New[int](8, 1, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do(bg(), "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure left nothing behind: the next Do must fill again.
	v, cached, err := c.Do(bg(), "k", func() (int, error) { return 7, nil })
	if err != nil || cached || v != 7 {
		t.Fatalf("Do after failed fill = (%d, %v, %v), want (7, false, nil)", v, cached, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// The LRU bound: capacity is enforced, the least recently used key is
// the one evicted, and a touched key survives.
func TestLRUEviction(t *testing.T) {
	c := New[int](3, 1, nil)
	fill := func(n int) func() (int, error) { return func() (int, error) { return n, nil } }
	for i := 0; i < 3; i++ {
		c.Do(bg(), fmt.Sprintf("k%d", i), fill(i))
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	if _, cached, _ := c.Do(bg(), "k0", fill(-1)); !cached {
		t.Fatal("k0 should be resident")
	}
	c.Do(bg(), "k3", fill(3))
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, cached, _ := c.Do(bg(), k, fill(-1)); !cached {
			t.Fatalf("%s was evicted; LRU order is wrong", k)
		}
	}
	// Checked last: this miss re-inserts k1 and evicts again.
	if _, cached, _ := c.Do(bg(), "k1", fill(1)); cached {
		t.Fatal("k1 survived eviction; LRU order is wrong")
	}
}

// Singleflight: N concurrent misses on one key run the fill once; the
// followers collapse onto the leader's scan.
func TestSingleflightCollapse(t *testing.T) {
	c := New[int](8, 1, nil)
	var fills atomic.Int32
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(bg(), "k", func() (int, error) {
				fills.Add(1)
				<-gate // park the leader so every follower queues up
				return 99, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the flight is registered and followers have had a
	// chance to pile on, then release the leader.
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times under concurrent identical misses, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Collapsed != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+collapsed", st, callers-1)
	}
}

// A leader whose fill fails must not poison followers: they retry and
// succeed under their own steam.
func TestFollowersSurviveLeaderFailure(t *testing.T) {
	c := New[int](8, 1, nil)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(bg(), "k", func() (int, error) {
			close(leaderIn)
			<-gate
			return 0, errors.New("leader died")
		})
	}()
	<-leaderIn
	const followers = 4
	got := make([]int, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _, errs[i] = c.Do(bg(), "k", func() (int, error) { return 5, nil })
		}(i)
	}
	// Give followers time to park on the flight, then fail the leader.
	for c.Stats().Collapsed < followers {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("leader's own error was swallowed")
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil || got[i] != 5 {
			t.Fatalf("follower %d = (%d, %v), want (5, nil)", i, got[i], errs[i])
		}
	}
}

// A follower whose own context dies while waiting gets its context
// error, not the leader's result.
func TestFollowerContextCancel(t *testing.T) {
	c := New[int](8, 1, nil)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(bg(), "k", func() (int, error) {
			close(leaderIn)
			<-gate
			return 1, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower got %v, want context.Canceled", err)
	}
	close(gate)
	wg.Wait()
}

// Aliasing: with a clone function, no two callers (leader included)
// share the same backing slice with the cache.
func TestCloneIsolation(t *testing.T) {
	clone := func(v []int) []int { return append([]int(nil), v...) }
	c := New[[]int](8, 1, clone)
	first, _, _ := c.Do(bg(), "k", func() ([]int, error) { return []int{1, 2, 3}, nil })
	first[0] = 999 // leader mutates its copy; the cache must not see it
	second, cached, _ := c.Do(bg(), "k", func() ([]int, error) { return nil, errors.New("unreachable") })
	if !cached || second[0] != 1 {
		t.Fatalf("cached value corrupted by leader mutation: %v (cached=%v)", second, cached)
	}
	second[1] = 777 // a hit's copy is also private
	third, _, _ := c.Do(bg(), "k", func() ([]int, error) { return nil, errors.New("unreachable") })
	if third[1] != 2 {
		t.Fatalf("cached value corrupted by hit mutation: %v", third)
	}
}

// A nil cache is a transparent pass-through.
func TestNilCache(t *testing.T) {
	var c *Cache[int]
	v, cached, err := c.Do(bg(), "k", func() (int, error) { return 3, nil })
	if err != nil || cached || v != 3 {
		t.Fatalf("nil cache Do = (%d, %v, %v)", v, cached, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// Keys spread across shards and the per-shard bounds compose to
// exactly the configured capacity — including when capacity does not
// divide evenly by the shard count (the remainder is distributed, not
// rounded up).
func TestShardedCapacity(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{64, 8}, {100, 16}, {7, 3}, {5, 16}, {1, 1},
	} {
		c := New[int](tc.capacity, tc.shards, nil)
		if got := c.Capacity(); got != tc.capacity {
			t.Fatalf("New(%d, %d).Capacity() = %d, want %d", tc.capacity, tc.shards, got, tc.capacity)
		}
		sum := 0
		for i := range c.shards {
			if c.shards[i].cap < 1 {
				t.Fatalf("New(%d, %d): shard %d holds %d entries", tc.capacity, tc.shards, i, c.shards[i].cap)
			}
			sum += c.shards[i].cap
		}
		if sum != tc.capacity {
			t.Fatalf("New(%d, %d): per-shard caps sum to %d", tc.capacity, tc.shards, sum)
		}
		for i := 0; i < 20*tc.capacity; i++ {
			k := fmt.Sprintf("key-%d", i)
			c.Do(bg(), k, func() (int, error) { return i, nil })
		}
		st := c.Stats()
		if st.Entries > tc.capacity {
			t.Fatalf("New(%d, %d): %d resident entries exceed the bound", tc.capacity, tc.shards, st.Entries)
		}
		if st.Evictions == 0 {
			t.Fatalf("New(%d, %d): overfilling evicted nothing", tc.capacity, tc.shards)
		}
	}
}

// Hammer the cache from many goroutines over a small key space — run
// with -race; also asserts every caller sees its key's value.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New[string](32, 4, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g+i)%48)
				want := "v-" + k
				v, _, err := c.Do(bg(), k, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("Do(%s) = (%q, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate load: %+v", st)
	}
}

// The doorkeeper: a key's first fill is rejected from residency (but
// still returned), its second fill admits it, and an unarmed cache is
// unchanged.
func TestDoorkeeperSecondChance(t *testing.T) {
	c := New[int](8, 1, nil)
	c.EnableDoorkeeper(64)
	fill := func(n int) func() (int, error) { return func() (int, error) { return n, nil } }

	// First sight: value served, not cached.
	if v, cached, _ := c.Do(bg(), "k", fill(1)); cached || v != 1 {
		t.Fatalf("first Do = (%d, %v), want (1, false)", v, cached)
	}
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("after first sight: %+v", st)
	}
	// Second sight: fill runs again and the entry is admitted.
	if v, cached, _ := c.Do(bg(), "k", fill(2)); cached || v != 2 {
		t.Fatalf("second Do = (%d, %v), want (2, false)", v, cached)
	}
	if st := c.Stats(); st.Entries != 1 || st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("after second sight: %+v", st)
	}
	// Third sight: a plain hit.
	if v, cached, _ := c.Do(bg(), "k", fill(3)); !cached || v != 2 {
		t.Fatalf("third Do = (%d, %v), want (2, true)", v, cached)
	}
}

func TestDoorkeeperOffByDefault(t *testing.T) {
	c := New[int](8, 2, nil)
	if _, cached, _ := c.Do(bg(), "k", func() (int, error) { return 1, nil }); cached {
		t.Fatal("first Do reported cached")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Admitted != 0 || st.Rejected != 0 {
		t.Fatalf("unarmed cache stats: %+v", st)
	}
}

// A head key that repeats gets admitted and then protected from a
// stream of one-off keys that would otherwise churn the LRU.
func TestDoorkeeperShieldsHeadFromScan(t *testing.T) {
	c := New[string](4, 1, nil)
	c.EnableDoorkeeper(0) // default sizing: 8x capacity
	fill := func(s string) func() (string, error) { return func() (string, error) { return s, nil } }

	c.Do(bg(), "head", fill("hot"))
	c.Do(bg(), "head", fill("hot")) // admitted on second sight
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("tail-%d", i)
		if _, cached, _ := c.Do(bg(), key, fill("cold")); cached {
			t.Fatalf("one-off %s reported cached", key)
		}
	}
	v, cached, _ := c.Do(bg(), "head", fill("refill"))
	if !cached || v != "hot" {
		t.Fatalf("head after scan = (%q, %v), want (hot, true)", v, cached)
	}
	st := c.Stats()
	if st.Rejected < 90 {
		t.Fatalf("scan keys were not doorkept: %+v", st)
	}
	if st.Evictions != 0 {
		// 100 distinct hashes over a 32-slot door can collide, but an
		// admitted tail key at capacity 4 still should not evict much.
		t.Logf("note: %d evictions from door collisions", st.Evictions)
	}
}
