// Package coverage answers §5.2's open question operationally: "what
// portion of the web site has been surfaced?" Against the synthetic
// web we can compute exact coverage from ground truth; against an
// unknown site we estimate it by capture–recapture over independent
// URL subsets, and bound it in the paper's requested form — "with
// probability M%, more than N% of the site's content has been exposed"
// — by bootstrap resampling.
package coverage

import (
	"math"
	"math/rand"
	"net/url"
	"sort"

	"deepweb/internal/textutil"
	"deepweb/internal/webgen"
)

// Exact is ground-truth coverage of a site by a set of surfaced URLs.
type Exact struct {
	Covered int
	Total   int
}

// Fraction returns covered/total (0 for an empty site).
func (e Exact) Fraction() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Covered) / float64(e.Total)
}

// ExactOf computes exact coverage using the site's oracle.
func ExactOf(site *webgen.Site, urls []string) Exact {
	rows := map[int]bool{}
	for _, set := range RowSets(site, urls) {
		for _, id := range set {
			rows[id] = true
		}
	}
	return Exact{Covered: len(rows), Total: site.Table.Len()}
}

// DistinctResultSets counts the distinct ground-truth result sets among
// the surfaced URLs, by content signature — the oracle analogue of the
// distinct-signature statistic the informativeness test estimates from
// sampled probes. Empty and unparsable submissions collapse together.
// Kept separate from ExactOf because it tokenizes every retrieved row;
// callers that only need coverage should not pay for it.
func DistinctResultSets(site *webgen.Site, urls []string) int {
	sets := RowSets(site, urls)
	sigs := make([]textutil.Signature, 0, len(sets))
	for _, set := range sets {
		sigs = append(sigs, site.RowSetSignature(set))
	}
	return textutil.DistinctSignatures(sigs)
}

// RowSets maps each URL to the ground-truth row ids it retrieves.
func RowSets(site *webgen.Site, urls []string) [][]int {
	out := make([][]int, 0, len(urls))
	for _, u := range urls {
		parsed, err := url.Parse(u)
		if err != nil {
			out = append(out, nil)
			continue
		}
		out = append(out, site.MatchingRows(parsed.Query()))
	}
	return out
}

// LincolnPetersen estimates population size from two captures of sizes
// n1 and n2 with overlap m: N ≈ n1*n2/m. Returns NaN when m == 0.
func LincolnPetersen(n1, n2, m int) float64 {
	if m == 0 {
		return math.NaN()
	}
	return float64(n1) * float64(n2) / float64(m)
}

// Chapman is the bias-corrected capture–recapture estimator
// N ≈ (n1+1)(n2+1)/(m+1) − 1; defined even for m == 0.
func Chapman(n1, n2, m int) float64 {
	return float64(n1+1)*float64(n2+1)/float64(m+1) - 1
}

// Estimate is a probabilistic coverage statement.
type Estimate struct {
	// Point is the central estimate of the covered fraction.
	Point float64
	// LowerBound is the N in "with probability M%, more than N% is
	// exposed": the (1−M) quantile of the bootstrap distribution.
	LowerBound float64
	// Confidence is M.
	Confidence float64
}

// EstimateFromRowSets bounds coverage using only surfaced result sets
// (no ground-truth total): each bootstrap iteration splits the URLs
// into two random halves, treats each half's row union as one capture,
// and applies Chapman to estimate the unseen population. iterations
// and seed make the bootstrap deterministic.
func EstimateFromRowSets(rowSets [][]int, confidence float64, iterations int, seed int64) Estimate {
	covered := map[int]bool{}
	for _, set := range rowSets {
		for _, id := range set {
			covered[id] = true
		}
	}
	total := len(covered)
	if total == 0 || len(rowSets) < 2 {
		return Estimate{Confidence: confidence}
	}
	r := rand.New(rand.NewSource(seed))
	fracs := make([]float64, 0, iterations)
	for it := 0; it < iterations; it++ {
		set1, set2 := map[int]bool{}, map[int]bool{}
		for _, rs := range rowSets {
			if r.Intn(2) == 0 {
				for _, id := range rs {
					set1[id] = true
				}
			} else {
				for _, id := range rs {
					set2[id] = true
				}
			}
		}
		m := 0
		for id := range set1 {
			if set2[id] {
				m++
			}
		}
		nHat := Chapman(len(set1), len(set2), m)
		if nHat < float64(total) {
			nHat = float64(total)
		}
		if nHat > 0 {
			fracs = append(fracs, float64(total)/nHat)
		}
	}
	if len(fracs) == 0 {
		return Estimate{Confidence: confidence}
	}
	sort.Float64s(fracs)
	point := fracs[len(fracs)/2]
	// Lower bound at the requested confidence: the (1-M) quantile.
	idx := int((1 - confidence) * float64(len(fracs)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(fracs) {
		idx = len(fracs) - 1
	}
	return Estimate{Point: point, LowerBound: fracs[idx], Confidence: confidence}
}
