package coverage

import (
	"math"
	"testing"
	"testing/quick"

	"deepweb/internal/webgen"
)

func TestExactOf(t *testing.T) {
	site, err := webgen.BuildSite("usedcars", 0, 42, 100)
	if err != nil {
		t.Fatal(err)
	}
	mk := site.Table.DistinctStrings("make")
	urls := []string{
		"http://" + site.Spec.Host + "/results?make=" + mk[0],
		"http://" + site.Spec.Host + "/results?make=" + mk[1],
	}
	ex := ExactOf(site, urls)
	want := 0
	for _, m := range mk[:2] {
		want += len(site.MatchingRows(map[string][]string{"make": {m}}))
	}
	if ex.Covered != want || ex.Total != 100 {
		t.Errorf("Exact = %+v, want covered %d of 100", ex, want)
	}
	if ex.Fraction() != float64(want)/100 {
		t.Errorf("Fraction = %v", ex.Fraction())
	}
	// Two different makes retrieve two distinct ground-truth result
	// sets; listing a URL twice must not add a third.
	if got := DistinctResultSets(site, urls); got != 2 {
		t.Errorf("DistinctResultSets = %d, want 2", got)
	}
	dup := append(append([]string(nil), urls...), urls[0])
	if got := DistinctResultSets(site, dup); got != 2 {
		t.Errorf("DistinctResultSets with duplicate URL = %d, want 2", got)
	}
}

func TestExactOfBadURL(t *testing.T) {
	site, _ := webgen.BuildSite("stores", 0, 1, 10)
	ex := ExactOf(site, []string{"://not a url"})
	if ex.Covered != 0 {
		t.Errorf("bad URL covered %d rows", ex.Covered)
	}
}

func TestExactFractionEmptySite(t *testing.T) {
	e := Exact{Covered: 0, Total: 0}
	if e.Fraction() != 0 {
		t.Error("empty site fraction should be 0")
	}
}

func TestLincolnPetersenAndChapman(t *testing.T) {
	// Textbook example: capture 100, recapture 60, overlap 20 → N≈300.
	if got := LincolnPetersen(100, 60, 20); math.Abs(got-300) > 1e-9 {
		t.Errorf("LP = %v", got)
	}
	if !math.IsNaN(LincolnPetersen(10, 10, 0)) {
		t.Error("LP with zero overlap should be NaN")
	}
	ch := Chapman(100, 60, 20)
	if ch < 280 || ch > 300 {
		t.Errorf("Chapman = %v", ch)
	}
	if math.IsNaN(Chapman(10, 10, 0)) {
		t.Error("Chapman must be defined at zero overlap")
	}
}

func TestEstimateFromRowSetsRecoversTruth(t *testing.T) {
	// 500-row population; 60 random-ish URL result sets of ~30 rows
	// each. True coverage is known; the estimate should be in the
	// neighborhood and the lower bound must not exceed the point.
	const population = 500
	rowSets := make([][]int, 60)
	covered := map[int]bool{}
	for i := range rowSets {
		for j := 0; j < 30; j++ {
			id := (i*37 + j*13) % population
			rowSets[i] = append(rowSets[i], id)
			covered[id] = true
		}
	}
	trueFrac := float64(len(covered)) / population
	est := EstimateFromRowSets(rowSets, 0.95, 200, 7)
	if est.Point <= 0 || est.Point > 1 {
		t.Fatalf("point estimate %v out of range", est.Point)
	}
	if est.LowerBound > est.Point+1e-9 {
		t.Errorf("lower bound %v above point %v", est.LowerBound, est.Point)
	}
	if math.Abs(est.Point-trueFrac) > 0.35 {
		t.Errorf("point %v too far from truth %v", est.Point, trueFrac)
	}
	if est.Confidence != 0.95 {
		t.Errorf("confidence = %v", est.Confidence)
	}
}

func TestEstimateDegenerate(t *testing.T) {
	if est := EstimateFromRowSets(nil, 0.9, 50, 1); est.Point != 0 {
		t.Errorf("empty input estimate = %+v", est)
	}
	if est := EstimateFromRowSets([][]int{{1, 2}}, 0.9, 50, 1); est.Point != 0 {
		t.Errorf("single-set estimate = %+v", est)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	rowSets := [][]int{{1, 2, 3}, {2, 3, 4}, {4, 5, 6}, {1, 6, 7}}
	a := EstimateFromRowSets(rowSets, 0.9, 100, 42)
	b := EstimateFromRowSets(rowSets, 0.9, 100, 42)
	if a != b {
		t.Errorf("same-seed estimates differ: %+v vs %+v", a, b)
	}
}

// Property: Chapman is monotone decreasing in overlap — more overlap
// between captures means a smaller estimated population.
func TestChapmanPropertyMonotone(t *testing.T) {
	f := func(n1x, n2x, mx uint8) bool {
		n1, n2 := int(n1x)+2, int(n2x)+2
		m := int(mx) % min(n1, n2)
		if m < 1 {
			m = 1
		}
		return Chapman(n1, n2, m) >= Chapman(n1, n2, m+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
