package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"deepweb/internal/index"
)

// Spill runs are the intermediate artifacts of the memory-bounded bulk
// build: each time the in-RAM posting accumulator reaches its budget,
// every non-empty shard flushes one sorted run file
//
//	spill-f<flush>-s<shard>.run
//
// framed exactly like a postings segment (same header, same
// varint/delta body, KindSpill) so the existing validation applies.
// Terms within a run are sorted; doc ids within a term are ascending.
// Because runs are flushed in doc-id order, concatenating a term's
// postings across a shard's runs in flush order yields the ascending
// posting list of the final segment — the property that makes the
// k-way merge independent of where the flush boundaries fell.
//
// Runs never outlive a successful build (the merge deletes them) and
// are never live data, so CleanSpills sweeps leftovers from crashed
// builds the way CleanTmp sweeps *.tmp.

const (
	spillPrefix = "spill-"
	spillSuffix = ".run"

	// maxSpillFlushes bounds the flush counter so zero-padded run
	// names stay lexically ordered by flush index.
	maxSpillFlushes = 10000
)

// SpillRunPath returns the run file path for one (flush, shard) pair.
func SpillRunPath(dir string, flush, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("spill-f%04d-s%04d.run", flush, shard))
}

// WriteSpillRun writes one sorted run for one shard, atomically.
// docCount is the number of documents emitted so far — the bound run
// readers check doc ids against.
func WriteSpillRun(dir string, flush, shards, shardID, docCount int, terms []index.TermPostings) error {
	if flush < 0 || flush >= maxSpillFlushes {
		return fmt.Errorf("store: spill flush %d outside [0, %d)", flush, maxSpillFlushes)
	}
	var e enc
	encodePostingsBody(&e, terms)
	return writeSegment(SpillRunPath(dir, flush, shardID), Header{
		Version:  Version,
		Kind:     KindSpill,
		Shards:   uint32(shards),
		ShardID:  uint32(shardID),
		DocCount: uint64(docCount),
	}, e.b)
}

// ReadSpillRun reads and validates one run file.
func ReadSpillRun(path string) ([]index.TermPostings, Header, error) {
	h, body, err := readSegment(path, KindSpill)
	if err != nil {
		return nil, Header{}, err
	}
	d := &dec{b: body, path: path}
	terms := decodePostingsBody(d, h.DocCount)
	if err := d.done(); err != nil {
		return nil, Header{}, err
	}
	return terms, h, nil
}

// SpillRuns returns shard si's run files under dir in ascending flush
// order. A missing directory yields no runs, not an error.
func SpillRuns(dir string, shard int) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("spill-f*-s%04d.run", shard)))
	if err != nil {
		return nil, err
	}
	// Zero-padded flush indexes make lexical order flush order.
	sort.Strings(paths)
	return paths, nil
}

// CleanSpills removes stale spill-run files from a snapshot directory —
// the droppings of a bulk build that crashed before its merge. Like
// CleanTmp, a missing dir is not an error, and readers never open run
// files as live data.
func CleanSpills(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, spillPrefix) || !strings.HasSuffix(name, spillSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
