package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deepweb/internal/index"
	"deepweb/internal/webtables"
)

func sampleDocs() *DocsSegment {
	return &DocsSegment{
		Docs: []index.Doc{
			{URL: "http://a/1", Title: "one", Text: "ford focus compact", Source: "form-a"},
			{URL: "http://a/2", Title: "two", Text: "honda civic — überschnell", Source: ""},
			{URL: "http://b/1", Title: "", Text: "", Source: "form-b"},
		},
		Lens: []int{7, 5, 0},
		Anns: map[int]map[string]string{
			0: {"make": "ford", "model": "focus"},
			2: {"make": "honda"},
		},
	}
}

func samplePostings() []index.TermPostings {
	return []index.TermPostings{
		{Term: "civic", Postings: []index.Posting{{Doc: 1, TF: 1}}},
		{Term: "ford", Postings: []index.Posting{{Doc: 0, TF: 3}, {Doc: 2, TF: 1}}},
		// Out-of-order doc ids must round-trip too (zig-zag deltas).
		{Term: "zig", Postings: []index.Posting{{Doc: 2, TF: 1}, {Doc: 0, TF: 9}}},
	}
}

func sampleTables() *TablesSegment {
	return &TablesSegment{
		PagesCrawled: 120,
		RawTables:    9,
		Tables: []webtables.RawTable{
			{URL: "http://a/t", Headers: []string{"make", "model"}, Rows: [][]string{{"ford", "focus"}, {"honda", "civic"}}},
			{URL: "http://b/t", Headers: []string{"city"}, Rows: [][]string{{"seattle"}, {}}},
		},
	}
}

func TestDocsRoundTrip(t *testing.T) {
	path := DocsPath(t.TempDir())
	want := sampleDocs()
	snapID, err := WriteDocs(path, 4, want)
	if err != nil {
		t.Fatal(err)
	}
	got, h, err := ReadDocs(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Kind != KindDocs || h.Shards != 4 || h.DocCount != 3 {
		t.Fatalf("bad header: %+v", h)
	}
	if snapID == 0 || h.SnapID != snapID {
		t.Fatalf("snapshot id not round-tripped: wrote %08x, read %08x", snapID, h.SnapID)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestPostingsRoundTrip(t *testing.T) {
	path := PostingsPath(t.TempDir(), 2)
	want := samplePostings()
	if err := WritePostings(path, 8, 2, 3, 0xBEEF, want); err != nil {
		t.Fatal(err)
	}
	got, h, err := ReadPostings(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 8 || h.ShardID != 2 || h.DocCount != 3 || h.SnapID != 0xBEEF {
		t.Fatalf("bad header: %+v", h)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestTablesRoundTrip(t *testing.T) {
	path := TablesPath(t.TempDir())
	want := sampleTables()
	if err := WriteTables(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTables(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

// Identical inputs must produce byte-identical segments (maps are
// emitted in sorted order), so snapshots diff cleanly.
func TestWriteDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.seg"), filepath.Join(dir, "b.seg")
	if _, err := WriteDocs(a, 4, sampleDocs()); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteDocs(b, 4, sampleDocs()); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if string(ba) != string(bb) {
		t.Fatal("two writes of the same docs segment differ")
	}
}

// writeSample writes one valid docs segment and returns its path and
// bytes, as the substrate for corruption tests.
func writeSample(t *testing.T) (string, []byte) {
	t.Helper()
	path := DocsPath(t.TempDir())
	if _, err := WriteDocs(path, 4, sampleDocs()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// rewrite replaces the file with mutated bytes.
func rewrite(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Every corruption mode must come back as a wrapped error — never a
// panic, never silent success.
func TestCorruptionDetected(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
		wantMsg string
	}{
		{"truncated header", func(b []byte) []byte { return b[:headerSize-8] }, ErrCorrupt, "truncated header"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }, ErrCorrupt, "truncated segment body"},
		{"empty file", func(b []byte) []byte { return nil }, ErrCorrupt, "truncated header"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrCorrupt, "bad magic"},
		{"header bit flip", func(b []byte) []byte { b[9] ^= 0x40; return b }, ErrCorrupt, "header CRC"},
		{"body bit flip", func(b []byte) []byte { b[headerSize+3] ^= 0x01; return b }, ErrCorrupt, "body CRC"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }, ErrCorrupt, "trailing"},
		{"wrong version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], Version+1)
			reseal(b)
			return b
		}, ErrVersion, "version"},
		{"wrong kind", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], uint16(KindPostings))
			reseal(b)
			return b
		}, ErrCorrupt, "kind"},
		{"doc count lies", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 99)
			reseal(b)
			return b
		}, ErrCorrupt, "header says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, raw := writeSample(t)
			rewrite(t, path, tc.mutate(append([]byte(nil), raw...)))
			_, _, err := ReadDocs(path)
			if err == nil {
				t.Fatal("corrupt segment read succeeded")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v not wrapped in %v", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// reseal recomputes both CRCs after a deliberate header edit, so the
// test reaches the semantic check it is aiming at instead of tripping
// the CRC first.
func reseal(b []byte) {
	binary.LittleEndian.PutUint32(b[36:40], crc32.Checksum(b[headerSize:], castagnoli))
	binary.LittleEndian.PutUint32(b[40:44], crc32.Checksum(b[0:40], castagnoli))
}

// A postings body whose doc ids exceed the declared doc count is
// structurally valid varint data but semantically corrupt.
func TestPostingsDocBoundsChecked(t *testing.T) {
	path := PostingsPath(t.TempDir(), 0)
	if err := WritePostings(path, 1, 0, 2, 0, []index.TermPostings{
		{Term: "ok", Postings: []index.Posting{{Doc: 5, TF: 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPostings(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range doc id not rejected: %v", err)
	}
}

// A missing segment surfaces the underlying not-exist error so callers
// can distinguish "no snapshot" from "broken snapshot".
func TestMissingSegment(t *testing.T) {
	_, _, err := ReadDocs(DocsPath(t.TempDir()))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

// A lying shard count must be rejected before it can size anything: 0
// would silently load a postings-free index, huge would OOM building
// shards. Both writer and reader refuse it.
func TestShardCountBounds(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteDocs(DocsPath(dir), 0, sampleDocs()); err == nil {
		t.Error("WriteDocs accepted 0 shards")
	}
	if _, err := WriteDocs(DocsPath(dir), MaxShards+1, sampleDocs()); err == nil {
		t.Error("WriteDocs accepted > MaxShards shards")
	}
	for _, shards := range []uint32{0, MaxShards + 1} {
		path, raw := writeSample(t)
		binary.LittleEndian.PutUint32(raw[8:12], shards)
		reseal(raw)
		rewrite(t, path, raw)
		if _, _, err := ReadDocs(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("shards=%d accepted by reader: %v", shards, err)
		}
	}
	// A postings segment claiming a shard id outside its shard count.
	path := PostingsPath(t.TempDir(), 0)
	if err := WritePostings(path, 4, 0, 3, 0, samplePostings()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[12:16], 4)
	reseal(raw)
	rewrite(t, path, raw)
	if _, _, err := ReadPostings(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("shard id == shard count accepted: %v", err)
	}
}

// Tombstones round-trip through the docs segment, sorted regardless of
// input order.
func TestDocsTombstonesRoundTrip(t *testing.T) {
	path := DocsPath(t.TempDir())
	want := sampleDocs()
	want.Dead = []int{2, 0} // unsorted on purpose
	if _, err := WriteDocs(path, 4, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadDocs(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dead, []int{0, 2}) {
		t.Fatalf("tombstones round-tripped as %v", got.Dead)
	}
}

// Tombstone ids outside the doc table, or duplicated, are corruption.
func TestDocsTombstoneBoundsChecked(t *testing.T) {
	for name, dead := range map[string][]int{
		"out of range": {7},
		"duplicate":    {1, 1},
	} {
		path := DocsPath(t.TempDir())
		if _, err := WriteDocs(path, 4, &DocsSegment{
			Docs: sampleDocs().Docs, Lens: sampleDocs().Lens, Dead: dead,
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadDocs(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s tombstone accepted: %v", name, err)
		}
	}
}

// The meta segment round-trips in sorted host order and writes
// deterministically.
func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seg := &MetaSegment{Sites: []SiteMeta{
		{Host: "z.example", Signature: 42},
		{Host: "a.example", Signature: 7},
	}}
	if err := WriteMeta(MetaPath(dir), seg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(MetaPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := []SiteMeta{{Host: "a.example", Signature: 7}, {Host: "z.example", Signature: 42}}
	if !reflect.DeepEqual(got.Sites, want) {
		t.Fatalf("meta round trip: %+v", got.Sites)
	}
	other := filepath.Join(dir, "other.seg")
	if err := WriteMeta(other, &MetaSegment{Sites: []SiteMeta{
		{Host: "a.example", Signature: 7}, {Host: "z.example", Signature: 42},
	}}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(MetaPath(dir))
	b, _ := os.ReadFile(other)
	if string(a) != string(b) {
		t.Fatal("meta segment bytes depend on input order")
	}
}

// A v1 segment — the pre-freshness format — must fail with a clean
// ErrVersion before any body byte is interpreted: the v1 docs body
// lacks the tombstone block, so a misread would silently fabricate
// tombstones from annotation bytes.
func TestV1SegmentRejected(t *testing.T) {
	path, raw := writeSample(t)
	binary.LittleEndian.PutUint16(raw[4:6], 1)
	reseal(raw)
	rewrite(t, path, raw)
	_, _, err := ReadDocs(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 segment: want ErrVersion, got %v", err)
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("error %q does not name the found version", err)
	}
}

// A tf outside int32 range is valid varint data that would silently
// wrap through the int32 cast and corrupt BM25 scores; the decoder
// must reject it like an out-of-range doc id.
func TestPostingsTFBoundsChecked(t *testing.T) {
	for _, tf := range []uint64{0, 1 << 31, 1 << 32} {
		var e enc
		e.uvarint(1)  // one term
		e.str("ok")   //
		e.uvarint(1)  // one posting
		e.varint(0)   // doc 0
		e.uvarint(tf) // out-of-range tf
		path := PostingsPath(t.TempDir(), 0)
		err := writeSegment(path, Header{
			Version: Version, Kind: KindPostings, Shards: 1, DocCount: 1,
		}, e.b)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadPostings(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("tf=%d accepted: %v", tf, err)
		}
	}
}

// A writer that crashes mid-Save leaves a torn segment only under a
// .tmp name (final names appear by rename); a reader must also survive
// the worst case of a torn file under a final name — os.Truncate
// mid-body — with a wrapped ErrCorrupt, never a panic or silent data.
func TestTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	path := DocsPath(dir)
	if _, err := WriteDocs(path, 2, sampleDocs()); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{fi.Size() - 3, headerSize + 2, headerSize, 5, 0} {
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadDocs(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("docs torn at %d bytes read as %v, want ErrCorrupt", cut, err)
		}
	}
}

// CleanTmp sweeps crashed writers' droppings and nothing else.
func TestCleanTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteDocs(DocsPath(dir), 1, sampleDocs()); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "docs.seg.123.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A directory with a .tmp suffix must be left alone.
	tmpDir := filepath.Join(dir, "keep.tmp")
	if err := os.Mkdir(tmpDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := CleanTmp(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale tmp survived the sweep: %v", err)
	}
	if _, _, err := ReadDocs(DocsPath(dir)); err != nil {
		t.Errorf("sweep damaged a live segment: %v", err)
	}
	if _, err := os.Stat(tmpDir); err != nil {
		t.Errorf("sweep removed a directory: %v", err)
	}
	if err := CleanTmp(filepath.Join(dir, "no-such-dir")); err != nil {
		t.Errorf("missing dir is an error: %v", err)
	}
}
