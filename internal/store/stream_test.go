package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"deepweb/internal/index"
)

func streamCorpus() *DocsSegment {
	return &DocsSegment{
		Docs: []index.Doc{
			{URL: "http://a.example/1", Title: "first doc", Text: "ford focus excellent", Source: "a.example"},
			{URL: "http://a.example/2", Title: "second", Text: "toyota camry", Source: "a.example"},
			{URL: "http://b.example/1", Title: "", Text: "no title here", Source: "b.example"},
			{URL: "http://b.example/2", Title: "fourth", Text: "annotated", Source: "b.example"},
		},
		Lens: []int{5, 4, 3, 2},
		Anns: map[int]map[string]string{
			0: {"make": "ford", "model": "focus"},
			3: {"city": "austin", "zip": "78701", "price": "9500"},
		},
	}
}

// The contract everything else leans on: the streamed segment is
// byte-for-byte the segment WriteDocs produces, snapshot id included.
func TestDocsWriterByteIdenticalToWriteDocs(t *testing.T) {
	dir := t.TempDir()
	seg := streamCorpus()

	ref := filepath.Join(dir, "ref.seg")
	wantID, err := WriteDocs(ref, 4, seg)
	if err != nil {
		t.Fatal(err)
	}

	got := filepath.Join(dir, "got.seg")
	w, err := NewDocsWriter(got, 4, len(seg.Docs))
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range seg.Docs {
		if err := w.Add(d, seg.Lens[id], seg.Anns[id]); err != nil {
			t.Fatal(err)
		}
	}
	gotID, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gotID != wantID {
		t.Fatalf("snapshot id: streamed %08x, WriteDocs %08x", gotID, wantID)
	}

	a, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("segments differ: WriteDocs %d bytes, streamed %d bytes", len(a), len(b))
	}

	// And it round-trips through the normal reader.
	rt, h, err := ReadDocs(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.SnapID != wantID || int(h.DocCount) != len(seg.Docs) || h.Shards != 4 {
		t.Fatalf("header mismatch: %+v", h)
	}
	if len(rt.Docs) != len(seg.Docs) || len(rt.Anns) != len(seg.Anns) || len(rt.Dead) != 0 {
		t.Fatalf("roundtrip mismatch: %d docs, %d anns, %d dead", len(rt.Docs), len(rt.Anns), len(rt.Dead))
	}
}

func TestDocsWriterCountMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "docs.seg")

	w, err := NewDocsWriter(path, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(index.Doc{URL: "u1"}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err == nil {
		t.Fatal("Close accepted 1 of 3 declared docs")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed close left a segment under the final name")
	}
	if leftovers(t, dir) != 0 {
		t.Fatal("failed close leaked temp files")
	}

	// Overflow is refused at Add time.
	w2, err := NewDocsWriter(path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Add(index.Doc{URL: "u1"}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w2.Add(index.Doc{URL: "u2"}, 1, nil); err == nil {
		t.Fatal("Add accepted more docs than declared")
	}
	w2.Abort()
	if leftovers(t, dir) != 0 {
		t.Fatal("abort leaked temp files")
	}
}

func leftovers(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			n++
		}
	}
	return n
}

func TestSpillRunRoundtrip(t *testing.T) {
	dir := t.TempDir()
	terms := []index.TermPostings{
		{Term: "alpha", Postings: []index.Posting{{Doc: 0, TF: 2}, {Doc: 5, TF: 1}}},
		{Term: "beta", Postings: []index.Posting{{Doc: 3, TF: 7}}},
	}
	if err := WriteSpillRun(dir, 2, 4, 1, 10, terms); err != nil {
		t.Fatal(err)
	}
	path := SpillRunPath(dir, 2, 1)
	got, h, err := ReadSpillRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != KindSpill || h.Shards != 4 || h.ShardID != 1 || h.DocCount != 10 {
		t.Fatalf("header mismatch: %+v", h)
	}
	if len(got) != 2 || got[0].Term != "alpha" || got[1].Term != "beta" ||
		len(got[0].Postings) != 2 || got[0].Postings[1] != (index.Posting{Doc: 5, TF: 1}) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	// A run is not a postings segment: the kind check must refuse it.
	if _, _, err := ReadPostings(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadPostings accepted a spill run: %v", err)
	}

	// Doc ids beyond the declared count are corruption.
	if err := WriteSpillRun(dir, 3, 4, 0, 2, terms); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSpillRun(SpillRunPath(dir, 3, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-bounds doc id not rejected: %v", err)
	}
}

func TestSpillRunsOrderAndCleanSpills(t *testing.T) {
	dir := t.TempDir()
	terms := []index.TermPostings{{Term: "t", Postings: []index.Posting{{Doc: 0, TF: 1}}}}
	for _, flush := range []int{7, 0, 12} {
		if err := WriteSpillRun(dir, flush, 2, 1, 1, terms); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSpillRun(dir, 0, 2, 0, 1, terms); err != nil {
		t.Fatal(err)
	}
	runs, err := SpillRuns(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{SpillRunPath(dir, 0, 1), SpillRunPath(dir, 7, 1), SpillRunPath(dir, 12, 1)}
	if len(runs) != 3 || runs[0] != want[0] || runs[1] != want[1] || runs[2] != want[2] {
		t.Fatalf("runs out of order: %v", runs)
	}

	// CleanSpills sweeps runs but leaves real segments alone.
	if _, err := WriteDocs(DocsPath(dir), 1, &DocsSegment{}); err != nil {
		t.Fatal(err)
	}
	if err := CleanSpills(dir); err != nil {
		t.Fatal(err)
	}
	left, err := SpillRuns(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("CleanSpills left %v", left)
	}
	if _, err := os.Stat(DocsPath(dir)); err != nil {
		t.Fatalf("CleanSpills removed the docs segment: %v", err)
	}
	if err := CleanSpills(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("missing dir should not error: %v", err)
	}

	if err := WriteSpillRun(dir, maxSpillFlushes, 1, 0, 1, terms); err == nil {
		t.Fatal("flush index past the padded range accepted")
	}
}
