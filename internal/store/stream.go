package store

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"deepweb/internal/index"
)

// DocsWriter streams a docs segment to disk one document at a time, so
// a bulk build never holds the document table in memory. The emitted
// bytes are identical to WriteDocs over the same documents (pinned by
// test): the body CRC — and therefore the snapshot id every postings
// segment is stamped with — is the same whether a corpus was saved
// from RAM or streamed.
//
// Streaming a format whose header precedes a body of unknown length
// works by reserving the 44-byte header up front, accumulating the
// body CRC incrementally, and patching the real header in place at
// Close before the atomic rename. Annotations are the one wrinkle: the
// docs body interleaves them *after* all documents, so per-doc
// annotation entries are buffered in a sidecar file
// (docs.seg.ann.tmp) and spliced into the body at Close — disk, not
// RAM, scales with annotation volume. Both temp names end in .tmp, so
// a crashed writer's droppings fall to the existing CleanTmp sweep.
//
// The writer expects exactly docCount Adds in doc-id order (id =
// arrival order, matching the index's sequential assignment) and no
// tombstones: fresh bulk builds have nothing deleted. Not safe for
// concurrent use.
type DocsWriter struct {
	path   string
	tmp    string
	annTmp string
	f      *os.File
	bw     *bufio.Writer
	annF   *os.File
	annW   *bufio.Writer

	shards   int
	expected int
	n        int // docs added so far = next doc id
	annDocs  int
	crc      uint32
	bodyLen  uint64
	scratch  enc
	err      error
	done     bool
}

// NewDocsWriter opens the temp files and writes the body prologue.
// docCount must be the exact number of Add calls to come; Close fails
// on a mismatch rather than emit a lying header.
func NewDocsWriter(path string, shards, docCount int) (*DocsWriter, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("store: docs writer: shard count %d outside [1, %d]", shards, MaxShards)
	}
	if docCount < 0 {
		return nil, fmt.Errorf("store: docs writer: negative doc count %d", docCount)
	}
	w := &DocsWriter{
		path:     path,
		tmp:      path + ".tmp",
		annTmp:   path + ".ann.tmp",
		shards:   shards,
		expected: docCount,
	}
	var err error
	if w.f, err = os.Create(w.tmp); err != nil {
		return nil, err
	}
	if w.annF, err = os.Create(w.annTmp); err != nil {
		w.f.Close()
		os.Remove(w.tmp)
		return nil, err
	}
	w.bw = bufio.NewWriterSize(w.f, 1<<16)
	w.annW = bufio.NewWriterSize(w.annF, 1<<15)
	// Header placeholder — patched with real lengths and CRCs at Close.
	if _, err := w.bw.Write(make([]byte, headerSize)); err != nil {
		w.fail(err)
		return nil, w.abort()
	}
	w.scratch.b = w.scratch.b[:0]
	w.scratch.uvarint(uint64(docCount))
	w.emit(w.scratch.b)
	if w.err != nil {
		return nil, w.abort()
	}
	return w, nil
}

func (w *DocsWriter) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// emit writes body bytes, tracking length and CRC incrementally.
func (w *DocsWriter) emit(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.fail(err)
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, b)
	w.bodyLen += uint64(len(b))
}

// Add appends one document. dl is its BM25 length (what ExportDocs
// reports as Lens); anns are its surfacing-time annotations, nil or
// empty for none. The document's id is its arrival order.
func (w *DocsWriter) Add(d index.Doc, dl int, anns map[string]string) error {
	if w.done {
		return errors.New("store: docs writer: add after close")
	}
	if w.err != nil {
		return w.err
	}
	if w.n >= w.expected {
		w.fail(fmt.Errorf("store: docs writer: more docs than the declared %d", w.expected))
		return w.err
	}
	e := &w.scratch
	e.b = e.b[:0]
	e.str(d.URL)
	e.str(d.Title)
	e.str(d.Text)
	e.str(d.Source)
	e.uvarint(uint64(dl))
	w.emit(e.b)
	if len(anns) > 0 && w.err == nil {
		attrs := make([]string, 0, len(anns))
		for a := range anns {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		e.b = e.b[:0]
		e.uvarint(uint64(w.n))
		e.uvarint(uint64(len(attrs)))
		for _, a := range attrs {
			e.str(a)
			e.str(anns[a])
		}
		if _, err := w.annW.Write(e.b); err != nil {
			w.fail(err)
		} else {
			w.annDocs++
		}
	}
	w.n++
	return w.err
}

// Close splices the annotation sidecar and empty tombstone list into
// the body, patches the real header, and atomically renames the
// segment into place. The returned snapshot id (the body CRC, exactly
// as WriteDocs computes it) must be stamped into the postings segments
// written alongside.
func (w *DocsWriter) Close() (snapID uint32, err error) {
	if w.done {
		return 0, errors.New("store: docs writer: already closed")
	}
	if w.err == nil && w.n != w.expected {
		w.fail(fmt.Errorf("store: docs writer: %d docs added, %d declared", w.n, w.expected))
	}
	// Annotation section: count, then the sidecar's entries (already
	// in ascending doc-id order because Add runs in id order).
	if w.err == nil {
		w.scratch.b = w.scratch.b[:0]
		w.scratch.uvarint(uint64(w.annDocs))
		w.emit(w.scratch.b)
	}
	if w.err == nil {
		if err := w.annW.Flush(); err != nil {
			w.fail(err)
		}
	}
	if w.err == nil {
		if _, err := w.annF.Seek(0, io.SeekStart); err != nil {
			w.fail(err)
		}
	}
	if w.err == nil {
		buf := make([]byte, 1<<16)
		for {
			nr, rerr := w.annF.Read(buf)
			if nr > 0 {
				w.emit(buf[:nr])
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				w.fail(rerr)
				break
			}
			if w.err != nil {
				break
			}
		}
	}
	// Empty tombstone list: a fresh bulk build deletes nothing.
	if w.err == nil {
		w.scratch.b = w.scratch.b[:0]
		w.scratch.uvarint(0)
		w.emit(w.scratch.b)
	}
	if w.err == nil {
		if err := w.bw.Flush(); err != nil {
			w.fail(err)
		}
	}
	if w.err == nil {
		hdr := make([]byte, headerSize)
		encodeHeader(hdr, Header{
			Version:  Version,
			Kind:     KindDocs,
			Shards:   uint32(w.shards),
			DocCount: uint64(w.n),
			SnapID:   w.crc,
		}, w.bodyLen, w.crc)
		if _, err := w.f.WriteAt(hdr, 0); err != nil {
			w.fail(err)
		}
	}
	if w.err != nil {
		return 0, w.abort()
	}
	w.done = true
	if err := w.f.Close(); err != nil {
		w.removeTemps()
		return 0, err
	}
	w.annF.Close()
	os.Remove(w.annTmp)
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return 0, err
	}
	return w.crc, nil
}

// Abort discards the writer and its temp files. Safe to call at any
// point, including after a successful Close (then a no-op).
func (w *DocsWriter) Abort() {
	if w.done {
		return
	}
	w.fail(errors.New("store: docs writer: aborted"))
	w.abort()
}

func (w *DocsWriter) abort() error {
	w.done = true
	w.f.Close()
	w.annF.Close()
	w.removeTemps()
	return w.err
}

func (w *DocsWriter) removeTemps() {
	os.Remove(w.tmp)
	os.Remove(w.annTmp)
}
