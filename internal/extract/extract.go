// Package extract takes up the second §5.1 challenge: "is it possible
// to automatically extract relational data from surfaced deep-web
// pages? … extract rows of data from pages that were generated from
// deep-web sites where the inputs that were filled in order to
// generate the pages are known."
//
// The known inputs are the lever. Every surfaced page carries the
// binding that generated it (e.g. make=ford), and the bound value
// appears inside each result record at a layout-determined position.
// Wrapper induction votes, across many (binding, record) observations,
// on the token offset where each input's value surfaces; extraction
// then slices records at the learned offsets. No per-site supervision
// is needed — the paper's point that generic wrapper learning needs
// manual markup, but deep-web pages come with free labels.
package extract

import (
	"sort"
	"strings"
)

// Page is one surfaced result page reduced to what induction needs:
// the binding that generated it and the record strings on it.
type Page struct {
	// Binding is the input → value assignment of the generating
	// submission (recoverable from the surfaced URL).
	Binding map[string]string
	// Records are the page's result records as flat text (one per
	// repeated list item).
	Records []string
}

// Wrapper is an induced positional extractor for one form's result
// layout.
type Wrapper struct {
	// Offsets maps an input name to the token offset at which its
	// value begins inside a record.
	Offsets map[string]int
	// Width maps an input name to the typical token width of its
	// values (mode over observations); multi-word values have
	// width > 1.
	Width map[string]int
	// Support counts the observations behind each offset choice.
	Support map[string]int
}

// Induce learns a wrapper from surfaced pages. For every bound
// (input, value) pair it locates the value's token position in each
// record that contains it and keeps the modal offset. Inputs whose
// values never appear in records (e.g. range endpoints — a price
// bound is a filter, not a field) get no offset.
func Induce(pages []Page) *Wrapper {
	votes := map[string]map[int]int{}  // input → offset → count
	widths := map[string]map[int]int{} // input → width → count
	for _, p := range pages {
		for input, value := range p.Binding {
			val := tokens(value)
			if len(val) == 0 {
				continue
			}
			for _, rec := range p.Records {
				toks := tokens(rec)
				off := findSubsequence(toks, val)
				if off < 0 {
					continue
				}
				if votes[input] == nil {
					votes[input] = map[int]int{}
					widths[input] = map[int]int{}
				}
				votes[input][off]++
				widths[input][len(val)]++
			}
		}
	}
	w := &Wrapper{Offsets: map[string]int{}, Width: map[string]int{}, Support: map[string]int{}}
	for input, offs := range votes {
		off, n := modal(offs)
		w.Offsets[input] = off
		w.Support[input] = n
		width, _ := modal(widths[input])
		w.Width[input] = width
	}
	return w
}

// Fields returns the wrapper's known field names, sorted by learned
// offset (layout order).
func (w *Wrapper) Fields() []string {
	out := make([]string, 0, len(w.Offsets))
	for f := range w.Offsets {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if w.Offsets[out[i]] != w.Offsets[out[j]] {
			return w.Offsets[out[i]] < w.Offsets[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Extract slices one record into fields at the learned offsets. A
// field's value spans from its offset for its learned width (clamped
// at the next field's offset and the record end). Records shorter than
// an offset simply omit that field.
func (w *Wrapper) Extract(record string) map[string]string {
	toks := tokens(record)
	fields := w.Fields()
	out := make(map[string]string, len(fields))
	for i, f := range fields {
		start := w.Offsets[f]
		if start >= len(toks) {
			continue
		}
		end := start + w.Width[f]
		if i+1 < len(fields) && w.Offsets[fields[i+1]] < end {
			end = w.Offsets[fields[i+1]]
		}
		if end > len(toks) {
			end = len(toks)
		}
		if end <= start {
			continue
		}
		out[f] = strings.Join(toks[start:end], " ")
	}
	return out
}

// ExtractAll applies the wrapper to every record of every page,
// returning one row per record. Rows preserve page order.
func (w *Wrapper) ExtractAll(pages []Page) []map[string]string {
	var out []map[string]string
	for _, p := range pages {
		for _, rec := range p.Records {
			out = append(out, w.Extract(rec))
		}
	}
	return out
}

func tokens(s string) []string {
	return strings.Fields(strings.ToLower(s))
}

// findSubsequence returns the first index where needle occurs as a
// contiguous token subsequence of hay, or -1.
func findSubsequence(hay, needle []string) int {
	if len(needle) == 0 || len(needle) > len(hay) {
		return -1
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

func modal(counts map[int]int) (key, n int) {
	best, bestN := 0, -1
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys) // deterministic tie-break: smallest key wins
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	if bestN < 0 {
		return 0, 0
	}
	return best, bestN
}
