package extract

import (
	"reflect"
	"testing"
	"testing/quick"
)

func carPages() []Page {
	return []Page{
		{
			Binding: map[string]string{"make": "ford"},
			Records: []string{
				"ford focus 1993 2500 98000 seattle 98101 clean title",
				"ford escort 1997 1800 120000 portland 97201 needs tires",
			},
		},
		{
			Binding: map[string]string{"make": "honda"},
			Records: []string{
				"honda civic 1999 3100 80000 seattle 98102 one owner",
			},
		},
		{
			Binding: map[string]string{"model": "civic"},
			Records: []string{
				"honda civic 1999 3100 80000 seattle 98102 one owner",
			},
		},
		{
			Binding: map[string]string{"zip": "98101"},
			Records: []string{
				"ford focus 1993 2500 98000 seattle 98101 clean title",
			},
		},
	}
}

func TestInduceLearnsOffsets(t *testing.T) {
	w := Induce(carPages())
	if w.Offsets["make"] != 0 {
		t.Errorf("make offset = %d, want 0", w.Offsets["make"])
	}
	if w.Offsets["model"] != 1 {
		t.Errorf("model offset = %d, want 1", w.Offsets["model"])
	}
	if w.Offsets["zip"] != 6 {
		t.Errorf("zip offset = %d, want 6", w.Offsets["zip"])
	}
	if w.Support["make"] != 3 {
		t.Errorf("make support = %d, want 3", w.Support["make"])
	}
	if got := w.Fields(); !reflect.DeepEqual(got, []string{"make", "model", "zip"}) {
		t.Errorf("Fields = %v", got)
	}
}

func TestInduceIgnoresFilterOnlyInputs(t *testing.T) {
	pages := []Page{{
		Binding: map[string]string{"minprice": "2000", "make": "ford"},
		Records: []string{"ford focus 1993 2500 98000 seattle 98101 ok"},
	}}
	w := Induce(pages)
	if _, ok := w.Offsets["minprice"]; ok {
		t.Error("range endpoint learned an offset despite never appearing in records")
	}
	if _, ok := w.Offsets["make"]; !ok {
		t.Error("make missing")
	}
}

func TestExtractSlicesRecord(t *testing.T) {
	w := Induce(carPages())
	got := w.Extract("toyota corolla 1999 4100 60000 denver 80202 reliable")
	if got["make"] != "toyota" || got["model"] != "corolla" || got["zip"] != "80202" {
		t.Errorf("Extract = %v", got)
	}
}

func TestExtractShortRecordOmitsFields(t *testing.T) {
	w := Induce(carPages())
	got := w.Extract("bmw 325i")
	if _, ok := got["zip"]; ok {
		t.Errorf("zip extracted from short record: %v", got)
	}
	if got["make"] != "bmw" {
		t.Errorf("make = %q", got["make"])
	}
}

func TestExtractMultiWordValue(t *testing.T) {
	pages := []Page{
		{
			Binding: map[string]string{"city": "san francisco"},
			Records: []string{
				"condo san francisco 450000 sunny corner",
				"loft san francisco 520000 brick walls",
			},
		},
		{
			Binding: map[string]string{"type": "condo"},
			Records: []string{"condo san francisco 450000 sunny corner"},
		},
	}
	w := Induce(pages)
	if w.Width["city"] != 2 {
		t.Fatalf("city width = %d, want 2", w.Width["city"])
	}
	got := w.Extract("house los angeles 700000 garden view")
	if got["city"] != "los angeles" {
		t.Errorf("multi-word city = %q", got["city"])
	}
	if got["type"] != "house" {
		t.Errorf("type = %q", got["type"])
	}
}

func TestExtractAllOrder(t *testing.T) {
	pages := carPages()
	w := Induce(pages)
	rows := w.ExtractAll(pages[:2])
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0]["model"] != "focus" || rows[2]["model"] != "civic" {
		t.Errorf("order wrong: %v", rows)
	}
}

func TestFindSubsequence(t *testing.T) {
	hay := []string{"a", "b", "c", "b", "c"}
	if got := findSubsequence(hay, []string{"b", "c"}); got != 1 {
		t.Errorf("got %d, want 1", got)
	}
	if got := findSubsequence(hay, []string{"c", "a"}); got != -1 {
		t.Errorf("got %d, want -1", got)
	}
	if got := findSubsequence(hay, nil); got != -1 {
		t.Errorf("empty needle: got %d", got)
	}
	if got := findSubsequence([]string{"a"}, []string{"a", "b"}); got != -1 {
		t.Errorf("needle longer than hay: got %d", got)
	}
}

func TestInduceEmpty(t *testing.T) {
	w := Induce(nil)
	if len(w.Offsets) != 0 || len(w.Fields()) != 0 {
		t.Errorf("empty induction produced %v", w.Offsets)
	}
	if got := w.Extract("anything at all"); len(got) != 0 {
		t.Errorf("extraction with no fields = %v", got)
	}
}

// Property: extraction never panics and extracted values are
// substrings (token-wise) of the record.
func TestExtractPropertyContained(t *testing.T) {
	w := Induce(carPages())
	f := func(rec string) bool {
		out := w.Extract(rec)
		lowRec := " " + joinTokens(rec) + " "
		for _, v := range out {
			if v == "" {
				return false
			}
			if !contains(lowRec, " "+v+" ") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func joinTokens(s string) string {
	toks := tokens(s)
	out := ""
	for i, t := range toks {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
