// Used-cars vertical: the §4.2 correlated-inputs story on one site.
// Compares naive against range-aware surfacing (the 120-vs-10 URL
// example) and shows the typed-input recognizer at work.
//
//	go run ./examples/usedcars
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"

	"deepweb/internal/core"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

func main() {
	log.SetFlags(0)

	run := func(name string, cfg core.Config) {
		web := webgen.NewWeb()
		site, err := webgen.BuildSite("usedcars", 0, 7, 400)
		if err != nil {
			log.Fatal(err)
		}
		web.AddSite(site)
		// This example compares the analysis stage alone (no ingestion),
		// so it drives the core surfacer directly rather than the engine
		// pipeline — surfacing + fetching every URL would be wasted work.
		s := core.NewSurfacer(webx.NewFetcher(web), cfg)
		res, err := s.SurfaceSite(context.Background(), site.HomeURL())
		if err != nil {
			log.Fatal(err)
		}
		priceURLs, invalid := 0, 0
		covered := map[int]bool{}
		for _, u := range res.URLs {
			parsed, _ := url.Parse(u)
			q := parsed.Query()
			rows := site.MatchingRows(q)
			for _, id := range rows {
				covered[id] = true
			}
			// Count URLs binding only the price inputs — the exact
			// population of the paper's 120-vs-10 example.
			priceBound, otherBound := false, false
			for key, vals := range q {
				bound := len(vals) > 0 && vals[0] != ""
				switch {
				case key == "minprice" || key == "maxprice":
					priceBound = priceBound || bound
				case bound:
					otherBound = true
				}
			}
			if priceBound && !otherBound {
				priceURLs++
				if len(rows) == 0 {
					invalid++
				}
			}
		}
		fmt.Printf("%-12s typed=%v ranges=%d total-urls=%d price-urls=%d (%d retrieve nothing) coverage=%.0f%%\n",
			name, res.Analysis.TypedInputs, len(res.Analysis.RangePairs),
			len(res.URLs), priceURLs, invalid, 100*float64(len(covered))/400)
	}

	aware := core.DefaultConfig()
	aware.MaxValuesPerInput = 10
	naive := aware
	naive.RangeAware = false
	naive.StrictExtension = false

	fmt.Println("surfacing a used-car site with min/max price inputs (10 candidate values each):")
	run("range-aware", aware)
	run("naive", naive)
	fmt.Println("\nthe paper's §4.2 arithmetic: naive ≈ 120 price URLs, range-aware = 10, same coverage")
}
