// Semantic services (§6): crawl a synthetic web through the engine
// façade, aggregate its HTML tables, and exercise the four services —
// synonyms, schema auto-complete, attribute values, entity properties —
// over the versioned /v1 HTTP surface (internal/api).
//
//	go run ./examples/semantics
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http/httptest"

	"deepweb/internal/api"
	"deepweb/internal/engine"
	"deepweb/internal/webgen"
)

func main() {
	log.SetFlags(0)

	e, err := engine.Build(webgen.WorldConfig{Seed: 42, SitesPerDom: 2, RowsPerSite: 120})
	if err != nil {
		log.Fatal(err)
	}
	sem := e.BuildSemantics(context.Background(), 5000)
	fmt.Printf("crawled %d pages → %d relational tables, %d distinct attributes\n\n",
		sem.PagesCrawled, len(sem.Tables), len(sem.ACS.Freq))

	// Serve the versioned API surface and query it like a client would.
	srv := httptest.NewServer(api.New(api.Options{Semantics: sem.Server()}))
	defer srv.Close()

	show := func(path string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var pretty any
		json.Unmarshal(body, &pretty)
		out, _ := json.Marshal(pretty)
		fmt.Printf("GET %-56s → %s\n", path, truncate(string(out), 100))
	}

	show("/v1/semantics/synonyms?attr=make&k=3")        // → "maker": mined from alias sites
	show("/v1/semantics/autocomplete?attrs=make&k=4")   // → model, price, year…
	show("/v1/semantics/values?attr=city&k=5")          // → city vocabulary for form filling
	show("/v1/semantics/properties?entity=seattle&k=5") // → attributes tables give the entity
	show("/v1/admin/stats")                             // → table counts for operators
	show("/healthz")                                    // → liveness
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
