// Long tail: regenerate the paper's §3.2 impact curve — the cumulative
// share of deep-web results held by the top-k forms — at paper scale.
//
//	go run ./examples/longtail
package main

import (
	"fmt"

	"deepweb/internal/workload"
)

func main() {
	const nForms = 200000
	// Calibrate the traffic exponent so the top 10k forms hold 50% of
	// impact (the paper's first data point), then print the curve.
	s := workload.CalibrateExponent(nForms, 10000, workload.PaperShares.Top10kOf200k)
	weights := workload.FormImpact(s, nForms)

	fmt.Printf("form-impact distribution: Zipf exponent %.3f over %d forms (gini %.2f)\n\n",
		s, nForms, workload.GiniCoefficient(weights))
	fmt.Println("  top-k forms   cumulative share of deep-web results")
	tops := []int{100, 1000, 10000, 50000, 100000, 200000}
	shares := workload.SharesAt(weights, tops)
	for i, k := range tops {
		marker := ""
		switch k {
		case 10000:
			marker = "   ← paper: 50%"
		case 100000:
			marker = "   ← paper: 85%"
		}
		fmt.Printf("  %8d      %5.1f%%%s\n", k, 100*shares[i], marker)
	}
	fmt.Println("\nthe impact of deep-web surfacing is on the long tail of queries (§3.2):")
	fmt.Println("half the impact comes from just 5% of forms, yet the last 15% needs half a million-strong tail")
}
