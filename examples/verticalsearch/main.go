// Vertical search: the virtual-integration side of §3.1. A mediator
// registers forms into mediated schemas, answers structured queries
// over a whole vertical, and shows both where it shines (typed slicing,
// POST forms, live results) and where it fails (the fortuitous query).
//
//	go run ./examples/verticalsearch
package main

import (
	"context"
	"fmt"
	"log"

	"deepweb/internal/engine"
	"deepweb/internal/query"
	"deepweb/internal/virtual"
	"deepweb/internal/webgen"
)

func main() {
	log.SetFlags(0)

	e, err := engine.Build(webgen.WorldConfig{Seed: 11, SitesPerDom: 3, RowsPerSite: 200})
	if err != nil {
		log.Fatal(err)
	}
	m := virtual.NewMediator(e.Fetch)
	registered := 0
	for _, site := range e.Web.Sites() {
		f, err := engine.FormOf(context.Background(), e.Fetch, site)
		if err != nil {
			continue
		}
		if _, err := m.Register(f); err == nil {
			registered++
		}
	}
	fmt.Printf("mediator: %d sources registered across %d schemas\n\n", registered, len(m.Schemas))

	// Structured query over the usedcars vertical: slice by make.
	fmt.Println("structured query usedcars[make:ford] (first 5 of merged live results):")
	for i, a := range m.StructuredQuery(context.Background(), "usedcars", []query.Predicate{query.Eq("make", "ford")}, 5) {
		fmt.Printf("  %d. [%s] %s\n", i+1, a.Site, a.Record)
	}

	// Keyword answering with routing + reformulation.
	fmt.Println("\nkeyword query 'homes in seattle' (routed + reformulated live):")
	answers, st := m.Answer(context.Background(), "homes in seattle", 5)
	fmt.Printf("  routed to %d sources, %d live submissions\n", st.Routed, st.Submitted)
	for i, a := range answers {
		fmt.Printf("  %d. [%s] %s\n", i+1, a.Site, a.Record)
	}

	// The §3.2 fortuitous query: the mediator understands the faculty
	// form perfectly — and still cannot answer this.
	fmt.Println("\nkeyword query 'sigmod innovations award professor':")
	answers, st = m.Answer(context.Background(), "sigmod innovations award professor", 5)
	fmt.Printf("  routed to %d sources, %d reformulable, %d answers", st.Routed, st.Submitted, len(answers))
	fmt.Println("  ← the schema cannot express 'award'; surfacing answers this (see examples/quickstart)")
}
