// Quickstart: generate a small deep web, surface one site, and search
// the results — the whole paper in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deepweb/internal/core"
	"deepweb/internal/coverage"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

func main() {
	log.SetFlags(0)

	// 1. A used-car classifieds site with 300 listings behind a form.
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, 42, 300)
	if err != nil {
		log.Fatal(err)
	}
	web.AddSite(site)
	fmt.Printf("site %s: %d records behind %s\n\n", site.Spec.Host, site.Table.Len(), site.FormURL())

	// 2. Surface it: the engine discovers the form, recognizes input
	// types, fuses the min/max price range, probes, and emits URLs.
	fetch := webx.NewFetcher(web)
	surfacer := core.NewSurfacer(fetch, core.DefaultConfig())
	res, err := surfacer.SurfaceSite(site.HomeURL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("typed inputs: %v\n", res.Analysis.TypedInputs)
	fmt.Printf("range pairs:  %v\n", res.Analysis.RangePairs)
	fmt.Printf("emitted %d URLs using %d analysis requests\n", len(res.URLs), res.ProbesUsed)
	cov := coverage.ExactOf(site, res.URLs)
	fmt.Printf("ground-truth coverage: %d/%d records (%.0f%%)\n\n", cov.Covered, cov.Total, 100*cov.Fraction())

	// 3. Insert the surfaced pages into a search index, like any other
	// pages (§3.2), and search.
	ix := index.New()
	st := core.IngestURLs(fetch, ix, res.Analysis.Form.ID, res.URLs, 3)
	fmt.Printf("indexed %d deep-web pages\n\n", st.Indexed)

	for _, q := range []string{"used ford focus", "honda under 5000", "toyota corolla seattle"} {
		fmt.Printf("query %q:\n", q)
		for i, hit := range ix.Search(q, 3) {
			fmt.Printf("  %d. %s (score %.2f)\n", i+1, hit.URL, hit.Score)
		}
	}
}
