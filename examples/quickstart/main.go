// Quickstart: generate a small deep web, surface one site through the
// engine façade, and search the results — the whole paper in ~50 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/webgen"
)

func main() {
	log.SetFlags(0)

	// 1. A used-car classifieds site with 300 listings behind a form.
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, 42, 300)
	if err != nil {
		log.Fatal(err)
	}
	web.AddSite(site)
	fmt.Printf("site %s: %d records behind %s\n\n", site.Spec.Host, site.Table.Len(), site.FormURL())

	// 2. Surface it: the engine discovers the form, recognizes input
	// types, fuses the min/max price range, probes, emits URLs, and
	// ingests the surfaced pages into its index like any other pages
	// (§3.2).
	e := engine.New(web)
	if _, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		log.Fatal(err)
	}
	res := e.Results[site.Spec.Host]
	fmt.Printf("typed inputs: %v\n", res.Analysis.TypedInputs)
	fmt.Printf("range pairs:  %v\n", res.Analysis.RangePairs)
	fmt.Printf("emitted %d URLs using %d analysis requests\n", len(res.URLs), res.ProbesUsed)
	cov := e.SiteCoverage(site.Spec.Host)
	fmt.Printf("ground-truth coverage: %d/%d records (%.0f%%)\n\n", cov.Covered, cov.Total, 100*cov.Fraction())

	// 3. Search the index through the serving API: the response carries
	// the ranked page plus the total hit count and retrieval time.
	fmt.Printf("indexed %d deep-web pages\n\n", e.IngestStats[site.Spec.Host].Indexed)
	for _, q := range []string{"used ford focus", "honda under 5000", "toyota corolla seattle"} {
		resp, err := e.Search(context.Background(), engine.SearchRequest{Query: q, K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q (%d total hits):\n", q, resp.Total)
		for i, hit := range resp.Results {
			fmt.Printf("  %d. %s (score %.2f)\n", i+1, hit.URL, hit.Score)
		}
	}
}
