# Local mirror of the CI gates (.github/workflows/ci.yml), so every
# check a PR will face is reproducible with one command before pushing.
GO ?= go

# Lint-tool pins, the single source of truth shared with the CI lint
# job (which runs these targets rather than restating the versions).
# Bump deliberately; @latest made the lint gate non-reproducible.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: verify fmt vet build test bench fuzz lint deepvet staticcheck govulncheck examples load chaos bulk ingest-full

# verify = the CI `test` job: gofmt, vet, build, race-enabled tests.
verify: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test and subtest execution order, so hidden
# inter-test state dependencies fail loudly instead of riding on
# declaration order. The seed is printed on failure; reproduce with
# `go test -race -shuffle=<seed> <pkg>`.
test:
	$(GO) test -race -shuffle=on ./...

# bench = the hot-path benchmark set CI diffs with benchstat (text
# pipeline, index add/search ± tombstones, snapshot save/load, refresh,
# end-to-end surfacing — see scripts/bench-hotpath.sh).
# BENCH_COUNT=6 reproduces CI's benchstat-grade sample count; pipe two
# runs into benchstat to compare branches locally.
BENCH_COUNT ?= 1
bench:
	./scripts/bench-hotpath.sh $(BENCH_COUNT)

# load = the CI load-smoke gate: a short Zipfian replay against an
# in-process engine, with a quarter of the pool carrying typed filter
# predicates so the structured-query path stays under load coverage.
# Fails on any search error or a cold result cache, and writes the
# BENCH_load.json artifact (see cmd/loadgen for the HTTP mode that
# measures a live server instead).
load:
	$(GO) run ./cmd/loadgen -sites 1 -rows 120 -c 4 -duration 3s -filtered 0.25 -min-hit-ratio 0.5 -out BENCH_load.json

# bulk = the CI ingest-ladder gate at its 100k rung: generate a
# 100k-record world (internal/bulkgen) and run the memory-bounded
# spill-to-disk snapshot build, gating on throughput and peak heap and
# writing BENCH_ingest.json. `make ingest-full` is the 1M-row rung —
# minutes of wall clock, so it never runs in CI; the peak-heap ceiling
# is what makes it interesting: 10x the docs must not mean 10x the
# memory.
BULK_DIR ?= /tmp/deepweb-bulk
bulk:
	$(GO) run ./cmd/deepcrawl -bulk 100000 -out $(BULK_DIR) \
		-ingestout BENCH_ingest.json -min-docs-per-sec 2000 -max-peak-mb 1024

ingest-full:
	$(GO) run ./cmd/deepcrawl -bulk 1000000 -out $(BULK_DIR) \
		-ingestout BENCH_ingest.json -min-docs-per-sec 2000 -max-peak-mb 2048

# examples = the CI examples-smoke job: every worked example must
# build and run against the current API.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run "./$$d"; \
	done

# chaos = the CI chaos-smoke gate: the convergence property (a chaos
# surface plus bounded refreshes equals a fault-free corpus bit for
# bit) under the race detector, then a deepcrawl pass with fault
# injection armed — which must finish with exit 0: every injected
# fault is transient, so nothing may be classified permanent.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/engine
	$(GO) run ./cmd/deepcrawl -sites 1 -rows 60 -chaos -chaosseed 7

# fuzz = the CI fuzz-smoke job (differential tokenizer fuzzing).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime $(FUZZTIME) ./internal/textutil

# lint = the CI lint job: the project's own analyzers first (no
# install, works offline), then the pinned external tools (network
# needed the first time; pinned versions make the module cache and
# CI's cache reusable across runs).
lint: deepvet staticcheck govulncheck

# deepvet = the five project-invariant analyzers (internal/analysis)
# mounted by cmd/deepvet: epochsafe, clockinject, envelope, ctxflow,
# errcmp. Zero external dependencies — this is the one lint gate that
# runs anywhere the repo builds.
deepvet:
	$(GO) run ./cmd/deepvet ./...

staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

govulncheck:
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	govulncheck ./...
