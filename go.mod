module deepweb

go 1.24
